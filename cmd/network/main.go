// Command network simulates red blood cells flowing through a branching
// vascular network, built through the scenario registry (network-y,
// network-tree, network-honeycomb, or network-json for a JSON file): the
// registry solves the reduced-order Poiseuille/Kirchhoff flow model, splits
// haematocrit at the bifurcations by plasma skimming, seeds cells per
// segment, and synthesizes the inlet/outlet boundary profiles; this driver
// prints the flow table and steps the full boundary-integral simulation.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rbcflow"
)

// main delegates to run so deferred cleanup (the -debug-addr listener
// shutdown) executes on EVERY exit path — os.Exit in main would skip it.
func main() {
	os.Exit(run())
}

func run() int {
	scn := flag.String("scenario", "y", "network scenario: y | tree | honeycomb (or any registered network-* name)")
	load := flag.String("load", "", "load a JSON network instead of a builder")
	save := flag.String("save", "", "save the built network as JSON and exit")
	depth := flag.Int("depth", 2, "tree depth (tree scenario)")
	rows := flag.Int("rows", 1, "honeycomb rows")
	cols := flag.Int("cols", 2, "honeycomb cols")
	ranks := flag.Int("ranks", 2, "number of ranks")
	steps := flag.Int("steps", 3, "time steps")
	maxCells := flag.Int("cells", 6, "maximum number of cells")
	level := flag.Int("level", 0, "surface refinement level")
	order := flag.Int("order", 4, "cell spherical-harmonic order")
	hct := flag.Float64("hct", 0.12, "inlet discharge haematocrit")
	gamma := flag.Float64("gamma", 1.4, "plasma-skimming exponent")
	inflow := flag.Float64("inflow", 2.0, "inlet volumetric flow")
	simulate := flag.Bool("sim", true, "run the boundary-integral simulation")
	out := flag.String("out", "", "output directory for VTK/CSV/checkpoint (empty = none)")
	blend := flag.Float64("blend", 0, "junction blend width in units of the smallest radius (0 = default)")
	legacy := flag.Bool("legacy-junctions", false, "use the legacy overlapping-capsule junction model")
	capGrading := flag.Int("cap-grading", 0, "edge-graded rim levels at terminal caps and collars (0 = default, -1 = ungraded legacy)")
	volCheck := flag.Bool("volcheck", false, "compute the order-converged junction volume with error bars (extra geometry builds)")
	planCache := flag.String("plan-cache", "", "wall-plan disk cache directory (reuses solver precompute across runs)")
	precomputeWorkers := flag.Int("precompute-workers", 0, "wall-plan build workers (0 = all cores)")
	telemetryOut := flag.String("telemetry-out", "", "write the run's metrics snapshot as JSON to this path")
	debugAddr := flag.String("debug-addr", "", `serve /metrics, /trace and /debug/pprof on this address (e.g. "localhost:6060")`)
	traceOut := flag.String("trace-out", "", "write the execution timeline as Chrome trace-event JSON to this path (Perfetto-viewable)")
	noHealth := flag.Bool("no-health", false, "disable the numerical-health monitor (NaN/Inf guards, GMRES stall detection, flight recorder)")
	tier := flag.String("tier", "", `simulation tier: "" / "bie" (full pipeline) or "surrogate" (reduced-order solve only, prints the coupled flow/haematocrit/viscosity table)`)
	calibrate := flag.String("calibrate", "", "fit the surrogate calibration against BIE references and write <dir>/calibration.gob + calibration.json, then exit")
	calibration := flag.String("calibration", "", "surrogate calibration artifact applied to -tier surrogate velocities")
	flag.Parse()

	if *calibrate != "" {
		return runCalibrate(*calibrate, *hct, *gamma)
	}

	name := *scn
	if !strings.HasPrefix(name, "network-") {
		name = "network-" + name
	}
	if *load != "" {
		name = "network-json"
	}
	params := rbcflow.ScenarioParams{
		SphOrder: *order, Level: *level, MaxCells: *maxCells,
		Hct: *hct, Gamma: *gamma, Inflow: *inflow,
		Depth: *depth, Rows: *rows, Cols: *cols,
		NetworkPath:   *load,
		JunctionBlend: *blend, LegacyJunctions: *legacy,
		CapGrading: *capGrading,
	}

	if *save != "" {
		// Graph-only path: no flow solve or surface build for an export.
		net, err := rbcflow.ScenarioNetworkGraph(name, params)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := rbcflow.SaveNetwork(net, *save); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("saved network (%d nodes, %d segments) to %s\n", len(net.Nodes), len(net.Segs), *save)
		return 0
	}

	switch *tier {
	case "", "bie":
	case "surrogate":
		return runSurrogate(name, params, *calibration)
	default:
		fmt.Fprintf(os.Stderr, "unknown tier %q (want bie or surrogate)\n", *tier)
		return 2
	}

	b, err := rbcflow.BuildScenario(name, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	net, flow, H := b.Geom.Net, b.Geom.Flow, b.Haematocrit

	fmt.Printf("network: %d nodes, %d segments; max junction imbalance %.2e\n",
		len(net.Nodes), len(net.Segs), flow.MaxImbalance(net))
	fmt.Println("  seg   A ->  B   radius   length     flow  haematocrit")
	for si, s := range net.Segs {
		fmt.Printf("  %3d %3d -> %2d %8.3f %8.3f %8.4f %12.4f\n",
			si, s.A, s.B, s.Radius, net.SegmentLength(si), flow.Q[si], H[si])
	}

	modelName := "blended junctions"
	if *legacy {
		modelName = "legacy capsule junctions"
	}
	flux := b.Geom.NetGeom.ComponentFlux(b.Surf, b.G)
	var worstFlux float64
	for _, fl := range flux {
		if math.Abs(fl) > worstFlux {
			worstFlux = math.Abs(fl)
		}
	}
	fmt.Printf("geometry: %s, %d wall components, worst component flux %.2e, closure defect %.2e\n",
		modelName, len(flux), worstFlux, rbcflow.NetworkClosureDefect(b.Surf))
	if fb := b.Geom.NetGeom.FallbackNodes; len(fb) > 0 {
		fmt.Printf("  capsule fallback at junction nodes %v (too tight to blend)\n", fb)
	}
	if *volCheck {
		// Rebuild on the exact TubeParams the simulated geometry used.
		vol, errEst, err := rbcflow.NetworkNumericalVolume(net, b.Geom.NetGeom.Tube, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("  converged volume %.6f ± %.2e (tube-sum reference %.3f)\n",
			vol, errEst, b.Geom.NetGeom.AnalyticVolume())
	}

	if !*simulate {
		return 0
	}
	fmt.Printf("surface: %d patches (volume %.3f, tube-sum reference %.3f); %d cells seeded\n",
		b.Surf.F.NumPatches(), rbcflow.VesselVolume(b.Surf), b.Geom.NetGeom.AnalyticVolume(), len(b.Cells))
	if len(b.Cells) == 0 {
		fmt.Println("no cells fit this configuration; increase -hct or network size")
		return 0
	}

	var reg *rbcflow.TelemetryRegistry
	if *telemetryOut != "" || *debugAddr != "" || *traceOut != "" {
		reg = rbcflow.NewTelemetryRegistry()
	}
	var rec *rbcflow.TraceRecorder
	if *traceOut != "" || *debugAddr != "" {
		rec = rbcflow.NewTraceRecorder(0)
		rbcflow.AttachTrace(reg, rec)
	}
	var health *rbcflow.HealthMonitor
	if !*noHealth {
		health = rbcflow.NewHealthMonitor(rbcflow.HealthMonitorConfig{}, rec, reg)
	}
	if *debugAddr != "" {
		addr, shutdown, err := rbcflow.ServeTelemetry(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		// Graceful shutdown on every exit path: in-flight /metrics scrapes
		// finish, then the listener closes.
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = shutdown(ctx)
		}()
		fmt.Printf("debug listener on http://%s (/metrics, /trace, /debug/pprof)\n", addr)
	}

	outcome, err := rbcflow.ExecuteScenario(b, rbcflow.RunOptions{
		Ranks: *ranks, Steps: *steps, OutDir: *out,
		PrecomputeWorkers: *precomputeWorkers, PlanCache: *planCache,
		Telemetry: reg, Health: health,
	})
	if err != nil {
		if *traceOut != "" {
			if terr := rbcflow.WriteTraceJSON(*traceOut, rec); terr == nil {
				fmt.Printf("execution timeline written to %s\n", *traceOut)
			}
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if outcome.PlanFingerprint != "" {
		fmt.Printf("wall plan %.12s (%s)\n", outcome.PlanFingerprint, outcome.PlanSource)
	}
	for _, row := range outcome.Rows {
		fmt.Printf("step %d: GMRES %d, contacts %d\n", row.Step, row.GMRES, row.Contacts)
	}
	fmt.Printf("modeled wall time %.3fs; breakdown:\n", outcome.Ledger.VirtualTime)
	for _, k := range []string{"COL", "BIE-solve", "BIE-FMM", "Other-FMM", "Other"} {
		fmt.Printf("  %-10s %8.3fs\n", k, outcome.Ledger.TimeByLabel[k])
	}
	if *telemetryOut != "" {
		if err := rbcflow.WriteTelemetryJSON(*telemetryOut, outcome.Telemetry); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("telemetry snapshot written to %s\n", *telemetryOut)
	}
	if *traceOut != "" {
		if err := rbcflow.WriteTraceJSON(*traceOut, rec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("execution timeline written to %s\n", *traceOut)
	}
	return 0
}

// runSurrogate solves the scenario on the reduced-order tier: the damped
// fixed point of Kirchhoff flow, plasma-skimming haematocrit transport, and
// the Fåhræus–Lindqvist effective viscosity — no surface build, no
// boundary-integral solve.
func runSurrogate(name string, params rbcflow.ScenarioParams, calPath string) int {
	var cal *rbcflow.SurrogateCalibration
	if calPath != "" {
		var err error
		if cal, err = rbcflow.LoadSurrogateCalibration(calPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	start := time.Now()
	net, res, err := rbcflow.ScenarioSurrogate(name, params, cal)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	elapsed := time.Since(start)

	vel := res.MeanVelocity
	if res.CorrectedVelocity != nil {
		vel = res.CorrectedVelocity
	}
	fmt.Printf("surrogate tier: %d nodes, %d segments\n", len(net.Nodes), len(net.Segs))
	fmt.Println("  seg   A ->  B   radius   length     flow  haematocrit   mu_eff  velocity")
	for si, s := range net.Segs {
		fmt.Printf("  %3d %3d -> %2d %8.3f %8.3f %8.4f %12.4f %8.4f %9.4f\n",
			si, s.A, s.B, s.Radius, net.SegmentLength(si), res.Flow.Q[si],
			res.Hct[si], res.Mu[si], vel[si])
	}
	solver := "dense"
	if res.Sparse {
		solver = fmt.Sprintf("sparse CG (%d iters)", res.CGIters)
	}
	fmt.Printf("fixed point: converged=%v in %d iteration(s), residual %.2e (%s solver)\n",
		res.Converged, res.Iters, res.Residual, solver)
	fmt.Printf("conservation: flow imbalance %.2e, RBC-flux imbalance %.2e\n",
		res.FlowImbalance, res.RBCImbalance)
	if cal != nil {
		fmt.Printf("calibration: %.12s (%d regime(s))\n", cal.Fingerprint, len(cal.Regimes))
	}
	fmt.Printf("solved in %s\n", elapsed.Round(time.Microsecond))
	if !res.Converged {
		return 1
	}
	return 0
}

// runCalibrate fits the surrogate correction factors against full
// boundary-integral references on the built-in calibration suite, then
// writes the content-addressed artifact and its JSON report into dir.
func runCalibrate(dir string, hct, gamma float64) int {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Println("calibrating surrogate against BIE references (Y bifurcation + depth-2 tree)...")
	start := time.Now()
	cal, rep, err := rbcflow.CalibrateSurrogate(rbcflow.SurrogateBIEReference{}, rbcflow.SurrogateParams{
		InletHct: hct, Gamma: gamma,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	gobPath := filepath.Join(dir, "calibration.gob")
	jsonPath := filepath.Join(dir, "calibration.json")
	if err := rbcflow.SaveSurrogateCalibration(gobPath, cal); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := rbcflow.WriteSurrogateReport(jsonPath, rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("calibration %.12s fitted in %s\n", cal.Fingerprint, time.Since(start).Round(time.Millisecond))
	for _, r := range cal.Regimes {
		upper := "inf"
		if r.RMax < math.MaxFloat64 {
			upper = fmt.Sprintf("%.3g", r.RMax)
		}
		fmt.Printf("  radius [%.3g, %s): factor %.6f over %d sample(s), RMS %.3g -> %.3g\n",
			r.RMin, upper, r.Factor, r.Samples, r.RMSBefore, r.RMSAfter)
	}
	fmt.Printf("artifact: %s\nreport:   %s\n", gobPath, jsonPath)
	return 0
}
