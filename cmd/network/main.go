// Command network simulates red blood cells flowing through a branching
// vascular network: it builds a parametric network (or loads one from
// JSON), solves the reduced-order Poiseuille/Kirchhoff flow model, splits
// haematocrit at the bifurcations by plasma skimming, seeds cells per
// segment, and steps the full boundary-integral simulation with the solved
// inlet/outlet profiles as boundary conditions.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"rbcflow"
)

func main() {
	scenario := flag.String("scenario", "y", "network scenario: y | tree | honeycomb")
	load := flag.String("load", "", "load a JSON network instead of a builder")
	save := flag.String("save", "", "save the built network as JSON and exit")
	depth := flag.Int("depth", 2, "tree depth (tree scenario)")
	rows := flag.Int("rows", 1, "honeycomb rows")
	cols := flag.Int("cols", 2, "honeycomb cols")
	ranks := flag.Int("ranks", 2, "number of ranks")
	steps := flag.Int("steps", 3, "time steps")
	maxCells := flag.Int("cells", 6, "maximum number of cells")
	level := flag.Int("level", 0, "surface refinement level")
	order := flag.Int("order", 4, "cell spherical-harmonic order")
	hct := flag.Float64("hct", 0.12, "inlet discharge haematocrit")
	gamma := flag.Float64("gamma", 1.4, "plasma-skimming exponent")
	inflow := flag.Float64("inflow", 2.0, "inlet volumetric flow")
	simulate := flag.Bool("sim", true, "run the boundary-integral simulation")
	flag.Parse()

	net, err := buildNetwork(*scenario, *load, *depth, *rows, *cols, *inflow)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *save != "" {
		if err := rbcflow.SaveNetwork(net, *save); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved network (%d nodes, %d segments) to %s\n", len(net.Nodes), len(net.Segs), *save)
		return
	}

	flow, err := rbcflow.SolveNetworkFlow(net, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	H := rbcflow.NetworkHaematocrit(net, flow, rbcflow.HaematocritParams{Inlet: *hct, Gamma: *gamma})
	fmt.Printf("network: %d nodes, %d segments; max junction imbalance %.2e\n",
		len(net.Nodes), len(net.Segs), flow.MaxImbalance(net))
	fmt.Println("  seg   A ->  B   radius   length     flow  haematocrit")
	for si, s := range net.Segs {
		fmt.Printf("  %3d %3d -> %2d %8.3f %8.3f %8.4f %12.4f\n",
			si, s.A, s.B, s.Radius, net.SegmentLength(si), flow.Q[si], H[si])
	}

	if !*simulate {
		return
	}
	prm := rbcflow.DefaultBIEParams()
	prm.QuadNodes = 5
	prm.ExtrapOrder = 3
	prm.Eta = 1
	prm.NearFactor = 0.6
	prm.CheckR, prm.CheckDr = 0.15, 0.15
	surf, geom, err := rbcflow.NetworkVessel(net, *level, rbcflow.TubeParams{Order: 6, AxialLen: 3.5}, prm)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	g := rbcflow.NetworkInflow(surf, geom, flow)
	cells := rbcflow.SeedNetworkCells(net, H, rbcflow.SeedParams{
		SphOrder: *order, CellRadius: 0.3, WallMargin: 0.12, MaxCells: *maxCells, Seed: 11,
	})
	fmt.Printf("surface: %d patches (volume %.3f, analytic %.3f); %d cells seeded\n",
		surf.F.NumPatches(), rbcflow.VesselVolume(surf), geom.AnalyticVolume(), len(cells))
	if len(cells) == 0 {
		fmt.Println("no cells fit this configuration; increase -hct or network size")
		return
	}

	cfg := rbcflow.Config{
		SphOrder: *order, Mu: 1, KappaB: 0.05, Dt: 0.02, MinSep: 0.06,
		CollisionOn: true,
		BIEParams:   prm,
		FMM:         rbcflow.FMMConfig{Order: 4, LeafSize: 64, DirectBelow: 1 << 24},
		GMRESMax:    25, GMRESTol: 1e-3,
	}
	world := rbcflow.Run(*ranks, rbcflow.SKX(), func(c *rbcflow.Comm) {
		sim := rbcflow.NewSimulation(c, cfg, cells, surf, g)
		for s := 1; s <= *steps; s++ {
			st := sim.Step(c)
			if c.Rank() == 0 {
				fmt.Printf("step %d: GMRES %d, contacts %d\n", s, st.GMRESIters, st.Contacts)
			}
		}
	})
	fmt.Printf("modeled wall time %.3fs; breakdown:\n", world.VirtualTime())
	for _, k := range []string{"COL", "BIE-solve", "BIE-FMM", "Other-FMM", "Other"} {
		fmt.Printf("  %-10s %8.3fs\n", k, world.TimeByLabel()[k])
	}
}

func buildNetwork(scenario, load string, depth, rows, cols int, inflow float64) (*rbcflow.Network, error) {
	if load != "" {
		return rbcflow.LoadNetwork(load)
	}
	switch scenario {
	case "y":
		net := rbcflow.YBifurcation(rbcflow.YParams{
			ParentRadius: 1, ChildRadius: 0.75, ParentLen: 5, ChildLen: 4, HalfAngle: math.Pi / 5,
		})
		net.SetFlow(0, inflow)
		net.SetPressure(2, 0)
		net.SetPressure(3, 0)
		return net, nil
	case "tree":
		net := rbcflow.BinaryTreeNetwork(rbcflow.TreeParams{
			Depth: depth, RootRadius: 1, RootLen: 5,
		})
		net.SetFlow(0, inflow)
		for _, term := range net.Terminals() {
			if term != 0 {
				net.SetPressure(term, 0)
			}
		}
		return net, nil
	case "honeycomb":
		net, in, out := rbcflow.HoneycombNetwork(rbcflow.HoneycombParams{
			Rows: rows, Cols: cols, Radius: 0.8, Edge: 4,
		})
		net.SetFlow(in, inflow)
		net.SetPressure(out, 0)
		return net, nil
	}
	return nil, fmt.Errorf("unknown scenario %q (want y, tree or honeycomb)", scenario)
}
