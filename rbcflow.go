// Package rbcflow is a Go reproduction of "Scalable Simulation of Realistic
// Volume Fraction Red Blood Cell Flows through Vascular Networks"
// (Lu, Morse, Rahimian, Stadler, Zorin — SC '19): a boundary-integral
// platform for simulating deformable red blood cells in Stokes flow through
// rigid vascular geometries, with constraint-based collision handling and a
// distributed (rank-based) execution model.
//
// The public API wraps the internal subsystems:
//
//	surf := rbcflow.TorusVessel(...)            // single-channel vessels
//	net := rbcflow.YBifurcation(...)            // branching vascular networks
//	flow, _ := rbcflow.SolveNetworkFlow(net, mu)
//	world := rbcflow.Run(ranks, machine, func(c *rbcflow.Comm) {
//	    for i := 0; i < steps; i++ { sim.Step(c) }
//	})
//
// See README.md for a quickstart and DESIGN.md for the system inventory.
package rbcflow

import (
	"context"
	"io"

	"rbcflow/internal/bie"
	"rbcflow/internal/core"
	"rbcflow/internal/forest"
	"rbcflow/internal/la"
	"rbcflow/internal/network"
	"rbcflow/internal/par"
	"rbcflow/internal/patch"
	"rbcflow/internal/rbc"
	"rbcflow/internal/scenario"
	"rbcflow/internal/surrogate"
	"rbcflow/internal/telemetry"
	"rbcflow/internal/trace"
	"rbcflow/internal/vessel"
)

// Re-exported fundamental types.
type (
	// Comm is a rank's communicator handle (the MPI substitute).
	Comm = par.Comm
	// World holds the virtual-time ledger of a distributed run.
	World = par.World
	// Machine models the cluster node type (SKX/KNL).
	Machine = par.Machine
	// Config configures a simulation (see core.Config).
	Config = core.Config
	// Simulation is the time-stepping state.
	Simulation = core.Simulation
	// StepStats summarizes one time step.
	StepStats = core.StepStats
	// Cell is one red blood cell surface.
	Cell = rbc.Cell
	// Surface is a discretized vessel boundary.
	Surface = bie.Surface
	// BIEParams are the boundary-solver discretization parameters.
	BIEParams = bie.Params
	// FMMConfig are the fast-summation accuracy knobs.
	FMMConfig = bie.FMMConfig
	// Patch is a polynomial surface patch.
	Patch = patch.Patch
	// Forest is a refinable collection of patches.
	Forest = forest.Forest
	// FillParams configures the RBC filling algorithm.
	FillParams = vessel.FillParams

	// Network is a branching vascular graph (junction nodes + radius-tagged
	// centerline segments).
	Network = network.Network
	// NetworkFlow is the reduced-order Poiseuille/Kirchhoff solution.
	NetworkFlow = network.FlowSolution
	// NetworkGeometry is the swept-tube surface realization of a network.
	NetworkGeometry = network.Geometry
	// TubeParams configures the swept-tube generator.
	TubeParams = network.TubeParams
	// JunctionModel selects how network junctions are realized as surface.
	JunctionModel = network.JunctionModel
	// NetworkField is the blended implicit wall field of a network.
	NetworkField = network.Field
	// YParams configures the Y-bifurcation builder.
	YParams = network.YParams
	// TreeParams configures the symmetric binary tree builder.
	TreeParams = network.TreeParams
	// HoneycombParams configures the honeycomb grid builder.
	HoneycombParams = network.HoneycombParams
	// HaematocritParams configures the plasma-skimming split rule.
	HaematocritParams = network.HaematocritParams
	// SeedParams configures haematocrit-driven cell seeding.
	SeedParams = network.SeedParams

	// ScenarioParams are the JSON-configurable scenario knobs.
	ScenarioParams = scenario.Params
	// ScenarioBundle is a built scenario: geometry, cells, BCs, Config.
	ScenarioBundle = scenario.Bundle
	// RunOptions configures a checkpointed scenario execution.
	RunOptions = scenario.RunOptions
	// RunOutcome summarizes a checkpointed scenario execution.
	RunOutcome = scenario.RunOutcome
	// Checkpoint is a versioned simulation snapshot.
	Checkpoint = scenario.Checkpoint
	// CampaignConfig describes a parameter-sweep campaign.
	CampaignConfig = scenario.CampaignConfig
	// CampaignManifest is the deterministic campaign summary.
	CampaignManifest = scenario.Manifest
	// Ledger is a virtual-time accounting snapshot.
	Ledger = par.Ledger

	// TelemetryRegistry is the process-wide metrics sink (counters, gauges,
	// histograms, phase spans); a nil registry disables all recording at
	// negligible cost. Attach one via Config.Telemetry / RunOptions.Telemetry.
	TelemetryRegistry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time copy of a registry, serializable
	// (gob/JSON) and restorable for checkpoint/resume continuity.
	TelemetrySnapshot = telemetry.Snapshot

	// TraceRecorder is the bounded execution-timeline recorder: attach it to
	// a registry (AttachTrace) and every telemetry span, step phase, and
	// health event lands on a per-goroutine timeline exportable as Chrome
	// trace-event JSON (chrome://tracing, Perfetto).
	TraceRecorder = trace.Recorder
	// HealthMonitor is the numerical-health monitor: NaN/Inf guards at phase
	// boundaries, GMRES stall/divergence detection, collision-overflow
	// checks. Wire one through RunOptions.Health (or core.Config.Health).
	HealthMonitor = trace.Health
	// HealthMonitorConfig tunes the monitor's detector thresholds; the zero
	// value selects calibrated defaults.
	HealthMonitorConfig = trace.HealthConfig
	// HealthVerdict is one finding (warning or fatal trip) of the monitor.
	HealthVerdict = trace.Verdict
	// HealthError is the structured error ExecuteScenario returns when the
	// monitor halts a run; it carries the verdicts and the postmortem-bundle
	// directory.
	HealthError = scenario.HealthError
)

// BIE operator modes.
const (
	ModeLocal  = bie.ModeLocal
	ModeGlobal = bie.ModeGlobal
)

// Wall-operator layer: the composable boundary-solver API (see DESIGN.md,
// "operator layer"). A WallOperator applies/evaluates the wall operator; a
// QuadPlan is its precomputed, serializable, content-addressed near-field
// correction operator.
type (
	// WallOperator is the pluggable wall-operator interface consumed by the
	// time stepper (Apply / EvalVelocity / OnSurfaceVelocity).
	WallOperator = bie.WallOperator
	// QuadPlan is a precomputed near-field correction plan — shareable
	// across ranks, sweep points, and (via Save/LoadWallPlan) processes.
	QuadPlan = bie.QuadPlan
	// OperatorOption configures NewWallOperator.
	OperatorOption = bie.Option
	// FarField is the pluggable smooth-summation backend (FMM or direct).
	FarField = bie.FarField
	// NearField is the pluggable near-zone correction backend.
	NearField = bie.NearField
	// GMRESResult carries boundary-solve diagnostics (iterations, residual
	// history).
	GMRESResult = la.GMRESResult
)

// NewWallOperator builds the boundary operator for a surface with the
// functional-option configuration (mode, FMM accuracy, precompute workers,
// a prebuilt plan, or alternative backends). Collective.
func NewWallOperator(c *Comm, s *Surface, opts ...OperatorOption) *bie.Solver {
	return bie.NewWallOperator(c, s, opts...)
}

// Wall-operator options.
func WithOperatorMode(m bie.Mode) OperatorOption        { return bie.WithMode(m) }
func WithOperatorFMM(fc FMMConfig) OperatorOption       { return bie.WithFMM(fc) }
func WithPrecomputeWorkers(n int) OperatorOption        { return bie.WithWorkers(n) }
func WithWallPlan(p *QuadPlan) OperatorOption           { return bie.WithPlan(p) }
func WithFarFieldBackend(f FarField) OperatorOption     { return bie.WithFarField(f) }
func WithNearFieldBackend(n NearField) OperatorOption   { return bie.WithNearField(n) }
func WithTelemetry(r *TelemetryRegistry) OperatorOption { return bie.WithTelemetry(r) }

// DirectFarField is the exact-summation far-field backend (verification
// reference and small-surface fast path); FMMFarField the default FMM one.
func DirectFarField() FarField          { return bie.DirectFarField() }
func FMMFarField(fc FMMConfig) FarField { return bie.FMMFarField(fc) }

// BuildWallPlan precomputes a full-surface correction plan with a worker
// pool (workers <= 0 uses all cores); bit-identical for any worker count.
func BuildWallPlan(s *Surface, workers int) *QuadPlan { return bie.BuildQuadPlan(s, workers) }

// WallPlanFingerprint content-addresses the correction operator of a
// surface (the disk-cache key of plan files).
func WallPlanFingerprint(s *Surface) string { return bie.PlanFingerprint(s) }

// WallPlanFor returns the plan of s through the content-addressed disk
// cache under cacheDir ("" = always build); the source reports "built" or
// "disk". reg (nil ok) counts the cache outcome (hit/miss/corrupt/
// incompatible/store_error) and times the build.
func WallPlanFor(s *Surface, workers int, cacheDir string, reg *TelemetryRegistry) (*QuadPlan, string, error) {
	p, src, err := bie.PlanFor(s, workers, cacheDir, reg)
	return p, string(src), err
}

// SaveWallPlan / LoadWallPlan expose the versioned gob plan snapshots.
func SaveWallPlan(path string, p *QuadPlan) error { return bie.SavePlan(path, p) }
func LoadWallPlan(path string) (*QuadPlan, error) { return bie.LoadPlan(path) }

// SolveWall runs distributed GMRES on any wall operator (rank-local rhs and
// initial guess; see bie.Solve).
func SolveWall(c *Comm, op WallOperator, rhs, phi0 []float64, tol float64, maxIter int) ([]float64, GMRESResult) {
	return bie.Solve(c, op, rhs, phi0, tol, maxIter)
}

// Junction surface models.
const (
	// JunctionBlended (default): one smoothly blended wall per junction, so
	// each connected network is a single open-ended channel satisfying the
	// per-component zero-flux solvability condition.
	JunctionBlended = network.JunctionBlended
	// JunctionCapsule: the legacy overlapping-capsule model (compatibility).
	JunctionCapsule = network.JunctionCapsule
)

// Run executes an SPMD body on p ranks with the given machine model and
// returns the world ledger (virtual time, per-category breakdown).
func Run(p int, m Machine, body func(c *Comm)) *World { return par.Run(p, m, body) }

// SKX and KNL are the two Stampede2-like machine models of the paper.
func SKX() Machine { return par.SKX() }
func KNL() Machine { return par.KNL() }

// NewSimulation builds a simulation from a global cell list and an optional
// vessel surface with boundary condition g (nil = no-slip).
func NewSimulation(c *Comm, cfg Config, cells []*Cell, surf *Surface, g []float64) *Simulation {
	return core.New(c, cfg, cells, surf, g)
}

// NewBiconcaveCell returns the standard biconcave RBC rest shape.
func NewBiconcaveCell(order int, radius float64, center [3]float64) *Cell {
	return rbc.NewBiconcaveCell(order, radius, center, nil)
}

// NewSphereCell returns a spherical cell.
func NewSphereCell(order int, radius float64, center [3]float64) *Cell {
	return rbc.NewSphereCell(order, radius, center)
}

// TorusVessel builds a torus channel surface (major radius R, tube radius
// r) refined to the given level.
func TorusVessel(level int, R, r float64, prm BIEParams) *Surface {
	f := forest.NewUniform(vessel.TorusRoots(8, 6, 4, R, r), level)
	return bie.NewSurface(f, prm)
}

// TrefoilVessel builds the complex knotted channel standing in for the
// Fig. 1 vascular network.
func TrefoilVessel(level int, scale, r float64, prm BIEParams) *Surface {
	f := forest.NewUniform(vessel.TrefoilRoots(8, 12, 4, scale, r), level)
	return bie.NewSurface(f, prm)
}

// CapsuleVessel builds the sedimentation container of Fig. 7.
func CapsuleVessel(level int, radius float64, axes [3]float64, prm BIEParams) *Surface {
	f := forest.NewUniform(vessel.CapsuleRoots(8, radius, axes), level)
	return bie.NewSurface(f, prm)
}

// CappedChannel is an open channel with flat edge-graded terminal caps
// (see vessel.CappedTubeChannel / vessel.CappedTorusChannel).
type CappedChannel = vessel.CappedChannel

// CappedTubeVessel builds an open straight tube of radius r and length L
// closed by flat caps with gradeLevels dyadic rim-panel levels
// (gradeLevels < 0 = the ungraded seed-era caps), refined to the given
// level. The returned channel synthesizes its flux-matched Poiseuille
// boundary condition via CappedChannel.Inflow.
func CappedTubeVessel(level int, r, L float64, gradeLevels int, prm BIEParams) (*Surface, *CappedChannel) {
	cc := vessel.CappedTubeChannel(8, 4, r, L, 2.5, gradeLevels, network.DefaultGradeRatio)
	return bie.NewSurface(forest.NewUniform(cc.Roots, level), prm), cc
}

// CappedTorusVessel builds an open torus arc (the seed torus at channel
// parameters when R=3, r=1) closed by flat edge-graded caps.
func CappedTorusVessel(level int, R, r, arc float64, gradeLevels int, prm BIEParams) (*Surface, *CappedChannel) {
	cc := vessel.CappedTorusChannel(8, 6, 4, R, r, arc, gradeLevels, network.DefaultGradeRatio)
	return bie.NewSurface(forest.NewUniform(cc.Roots, level), prm), cc
}

// Fill populates a vessel with nearly-touching cells (paper §5.1).
func Fill(s *Surface, prm FillParams) []*Cell { return vessel.Fill(s, prm) }

// VolumeFraction returns cell volume / vessel volume (paper §5.4).
func VolumeFraction(s *Surface, cells []*Cell) float64 { return vessel.VolumeFraction(s, cells) }

// VesselVolume returns the enclosed volume of a vessel surface.
func VesselVolume(s *Surface) float64 { return vessel.Volume(s) }

// WallInflow builds the tangential driving boundary condition on a torus
// channel window (zero net flux).
func WallInflow(s *Surface, th0, th1, speed float64) []float64 {
	return vessel.WallInflow(s, th0, th1, speed)
}

// DefaultBIEParams returns the calibrated boundary-solver parameters.
func DefaultBIEParams() BIEParams { return bie.DefaultParams() }

// YBifurcation builds the canonical diverging bifurcation network.
func YBifurcation(p YParams) *Network { return network.YBifurcation(p) }

// BinaryTreeNetwork builds a planar symmetric binary tree network.
func BinaryTreeNetwork(p TreeParams) *Network { return network.BinaryTree(p) }

// HoneycombNetwork builds a honeycomb capillary grid with inlet/outlet
// stubs; returns the network and the inlet and outlet terminal indices.
func HoneycombNetwork(p HoneycombParams) (*Network, int, int) { return network.Honeycomb(p) }

// LoadNetwork reads and validates a JSON network description.
func LoadNetwork(path string) (*Network, error) { return network.Load(path) }

// SaveNetwork writes a network as JSON.
func SaveNetwork(n *Network, path string) error { return network.Save(n, path) }

// SolveNetworkFlow runs the reduced-order flow model: Poiseuille impedance
// per segment, Kirchhoff conservation at junctions, pressure/flow boundary
// conditions at terminals.
func SolveNetworkFlow(n *Network, mu float64) (*NetworkFlow, error) {
	return network.SolveFlow(n, mu)
}

// NetworkVessel sweeps the network into a watertight patch surface
// (rotation-minimizing frames along each segment, hemispherical junction
// caps, flat terminal caps) refined to the given level, feeding the standard
// forest/bie pipeline. Returns the surface and the geometry (needed for the
// boundary condition).
func NetworkVessel(n *Network, level int, tube TubeParams, prm BIEParams) (*Surface, *NetworkGeometry, error) {
	g, err := network.BuildGeometry(n, tube)
	if err != nil {
		return nil, nil, err
	}
	return g.Surface(level, prm), g, nil
}

// NetworkInflow synthesizes the velocity boundary condition on a network
// surface from a reduced-order flow solution: parabolic profiles on the
// inlet/outlet caps with fluxes matching the solved terminal flows, no-slip
// elsewhere.
func NetworkInflow(s *Surface, g *NetworkGeometry, f *NetworkFlow) []float64 {
	return g.Inflow(s, f)
}

// NetworkHaematocrit propagates haematocrit from the inflow terminals with
// a plasma-skimming split at bifurcations; returns per-segment values.
func NetworkHaematocrit(n *Network, f *NetworkFlow, prm HaematocritParams) []float64 {
	return network.SplitHaematocrit(n, f, prm)
}

// SeedNetworkCells fills each segment with cells at its target haematocrit,
// validating placements against the blended wall field by default.
func SeedNetworkCells(n *Network, H []float64, prm SeedParams) []*Cell {
	return network.SeedCells(n, H, prm)
}

// NewNetworkField builds the blended implicit wall field of a network
// (blendRadius in units of the smallest segment radius, 0 = default). Its
// Eval method is the signed-distance bound used for seeding and filling.
func NewNetworkField(n *Network, blendRadius float64) *NetworkField {
	return network.NewField(n, blendRadius)
}

// NetworkClosureDefect returns |∮ n dA| / area of a surface — a
// watertightness metric that vanishes for a closed patch union.
func NetworkClosureDefect(s *Surface) float64 { return network.ClosureDefect(s) }

// NetworkNumericalVolume returns the order-converged divergence-theorem
// volume of a network surface with an error estimate (see
// network.NumericalVolume).
func NetworkNumericalVolume(n *Network, tp TubeParams, orders []int) (vol, errEst float64, err error) {
	return network.NumericalVolume(n, tp, orders)
}

// Scenarios lists the registered scenario names.
func Scenarios() []string { return scenario.Names() }

// ScenarioNetworkGraph builds only the graph stage (nodes, segments,
// boundary conditions) of a network-family scenario — cheap JSON export
// without the flow solve and surface build.
func ScenarioNetworkGraph(name string, p ScenarioParams) (*Network, error) {
	return scenario.NetworkGraph(name, p)
}

// BuildScenario builds a named scenario's geometry, cell population,
// boundary data, and step Config in one call.
func BuildScenario(name string, p ScenarioParams) (*ScenarioBundle, error) {
	return scenario.Build(name, p)
}

// ExecuteScenario runs a bundle with checkpoint/restart, VTK output, and
// CSV observables (see scenario.Execute).
func ExecuteScenario(b *ScenarioBundle, opt RunOptions) (*RunOutcome, error) {
	return scenario.Execute(b, opt)
}

// RunCampaign expands a parameter sweep and executes it across a bounded
// worker pool, writing a deterministic manifest to outDir.
func RunCampaign(cfg *CampaignConfig, outDir string, logw io.Writer) (*CampaignManifest, error) {
	return scenario.RunCampaign(cfg, outDir, logw)
}

// ExecuteScenarioContext is ExecuteScenario under a cancellation scope:
// cancelling ctx (timeout, ^C, client disconnect) stops the step loop at a
// collective step boundary and returns a *scenario.CancelledError without
// checkpointing the cancelled segment.
func ExecuteScenarioContext(ctx context.Context, b *ScenarioBundle, opt RunOptions) (*RunOutcome, error) {
	return scenario.ExecuteContext(ctx, b, opt)
}

// RunCampaignContext is RunCampaign under a cancellation scope: cancelling
// ctx drains the campaign (in-flight runs stop through the shared
// cancellation path and record "cancelled"; queued runs never start).
func RunCampaignContext(ctx context.Context, cfg *CampaignConfig, outDir string, logw io.Writer) (*CampaignManifest, error) {
	return scenario.RunCampaignContext(ctx, cfg, outDir, logw)
}

// NewTelemetryRegistry creates an empty metrics registry. Share one across
// the subsystems of a run (operator, stepper, scenario executor) to collect
// the full per-phase breakdown; see DESIGN.md, "Observability".
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// ServeTelemetry starts the optional debug HTTP listener (/metrics text dump
// plus net/http/pprof) on addr, returning the bound address (useful with
// ":0") and a graceful shutdown func (http.Server.Shutdown semantics) that
// callers must invoke on every exit path so the listener never leaks.
func ServeTelemetry(addr string, reg *TelemetryRegistry) (string, func(context.Context) error, error) {
	return telemetry.ServeDebug(addr, reg)
}

// WriteTelemetryJSON dumps a snapshot as indented JSON (the -telemetry-out
// format of the cmd drivers).
func WriteTelemetryJSON(path string, s TelemetrySnapshot) error {
	return telemetry.WriteJSONFile(path, s)
}

// NewTraceRecorder creates an execution-timeline recorder holding the last
// capEvents events (<= 0 selects the default, trace.DefaultCapEvents).
// Recording is bounded and allocation-free after warm-up; with no recorder
// attached, instrumented code pays nothing.
func NewTraceRecorder(capEvents int) *TraceRecorder { return trace.New(capEvents) }

// AttachTrace wires a recorder into a registry: from then on every
// telemetry.Start span on that registry also emits timeline begin/end
// events. Pass the same registry to RunOptions.Telemetry and the run's
// phases appear on per-rank timelines. A nil recorder detaches.
func AttachTrace(reg *TelemetryRegistry, rec *TraceRecorder) {
	if rec == nil {
		reg.SetTracer(nil) // avoid storing a typed-nil in the interface
		return
	}
	reg.SetTracer(rec)
}

// WriteTraceJSON exports the recorder's retained events as Chrome
// trace-event JSON — the -trace-out format of the cmd drivers, viewable in
// Perfetto or chrome://tracing.
func WriteTraceJSON(path string, rec *TraceRecorder) error { return rec.WriteChromeFile(path) }

// ValidateTraceFile structurally validates a Chrome trace-event JSON file
// (balanced, properly nested begin/end pairs per thread; monotone
// timestamps) and returns summary statistics.
func ValidateTraceFile(path string) (trace.ChromeStats, error) { return trace.ValidateChromeFile(path) }

// NewHealthMonitor builds a numerical-health monitor. rec (nil ok) receives
// timeline instants on each verdict; reg (nil ok) counts health.verdicts
// and health.trips. The zero HealthMonitorConfig selects calibrated
// defaults that never trip on healthy runs.
func NewHealthMonitor(cfg HealthMonitorConfig, rec *TraceRecorder, reg *TelemetryRegistry) *HealthMonitor {
	return trace.NewHealth(cfg, rec, reg)
}

// SaveCheckpoint / LoadCheckpoint expose the versioned gob snapshots.
func SaveCheckpoint(path string, ck *Checkpoint) error { return scenario.SaveCheckpoint(path, ck) }
func LoadCheckpoint(path string) (*Checkpoint, error)  { return scenario.LoadCheckpoint(path) }

// WriteCellsVTK writes cell membranes as legacy-VTK polydata.
func WriteCellsVTK(w io.Writer, cells []*Cell, title string) error {
	return scenario.WriteCellsVTK(w, cells, title)
}

// WriteSurfaceVTK writes a vessel wall as legacy-VTK polydata.
func WriteSurfaceVTK(w io.Writer, s *Surface, res int, title string) error {
	return scenario.WriteSurfaceVTK(w, s, res, title)
}

// ValidateVTK checks a legacy-VTK polydata stream and returns its point and
// polygon counts.
func ValidateVTK(r io.Reader) (npts, ncells int, err error) { return scenario.ValidateVTK(r) }

// --- Reduced-order surrogate tier ---

type (
	// SurrogateParams configures one reduced-order tier solve.
	SurrogateParams = surrogate.Params
	// SurrogateResult is a converged surrogate-tier solution.
	SurrogateResult = surrogate.Result
	// SurrogateCalibration is the versioned, content-addressed correction
	// artifact fitted against full BIE reference solves.
	SurrogateCalibration = surrogate.Calibration
	// SurrogateReport is the JSON companion of a calibration artifact.
	SurrogateReport = surrogate.Report
	// SurrogateBIEReference configures the full boundary-integral reference
	// measurement of the calibration harness.
	SurrogateBIEReference = surrogate.BIEReferenceConfig
)

// SolveSurrogate runs the damped fixed-point coupling of flow,
// plasma-skimming haematocrit, and Fåhræus–Lindqvist effective viscosity on
// a network.
func SolveSurrogate(n *Network, prm SurrogateParams) (*SurrogateResult, error) {
	return surrogate.Solve(n, prm)
}

// SolveNetworkFlowVisc is the variable-viscosity reduced-order flow solve:
// one viscosity per segment (the surrogate tier's inner solver).
func SolveNetworkFlowVisc(n *Network, mu []float64) (*NetworkFlow, error) {
	return network.SolveFlowVisc(n, mu)
}

// ScenarioSurrogate solves a network-family scenario on the surrogate tier
// at the scenario's own defaults; cal may be nil (uncorrected velocities).
func ScenarioSurrogate(name string, p ScenarioParams, cal *SurrogateCalibration) (*Network, *SurrogateResult, error) {
	return scenario.RunSurrogate(name, p, cal)
}

// CalibrateSurrogate fits the built-in calibration suite (Y bifurcation and
// depth-2 tree) against full BIE reference solves and returns the
// content-addressed artifact with its report.
func CalibrateSurrogate(cfg SurrogateBIEReference, prm SurrogateParams) (*SurrogateCalibration, *SurrogateReport, error) {
	return surrogate.CalibrateBuiltin(cfg, prm)
}

// SaveSurrogateCalibration / LoadSurrogateCalibration persist the artifact
// through the same atomic gob protocol as wall plans and checkpoints.
func SaveSurrogateCalibration(path string, c *SurrogateCalibration) error {
	return surrogate.SaveCalibration(path, c)
}
func LoadSurrogateCalibration(path string) (*SurrogateCalibration, error) {
	return surrogate.LoadCalibration(path)
}

// WriteSurrogateReport writes the human-readable calibration report.
func WriteSurrogateReport(path string, r *SurrogateReport) error {
	return surrogate.WriteReport(path, r)
}
