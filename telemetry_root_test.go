package rbcflow_test

import (
	"math"
	"testing"
	"time"

	"rbcflow"
)

// TestTelemetrySpanDecomposition is the observability acceptance check: on
// the grade-2 capped-tube solve, the operator's telemetry breakdown must
// account for the measured wall time — the far + near spans sum to within
// 10% of the matvec span, and far + near + GMRES overhead (solve span minus
// matvec span) lands within 10% of the externally timed solve.
func TestTelemetrySpanDecomposition(t *testing.T) {
	if testing.Short() {
		t.Skip("full capped-tube solve")
	}
	prm := rbcflow.BIEParams{QuadNodes: 5, Eta: 1, ExtrapOrder: 3, CheckR: 0.15, CheckDr: 0.15, NearFactor: 0.6}
	surf, cc := rbcflow.CappedTubeVessel(0, 1, 6, 2, prm)
	bc := cc.Inflow(surf, math.Pi/2)
	reg := rbcflow.NewTelemetryRegistry()
	var iters int
	var wallSolve float64
	rbcflow.Run(1, rbcflow.SKX(), func(c *rbcflow.Comm) {
		op := rbcflow.NewWallOperator(c, surf,
			rbcflow.WithOperatorFMM(rbcflow.FMMConfig{DirectBelow: 1 << 40}),
			rbcflow.WithTelemetry(reg))
		t0 := time.Now()
		_, res := op.Solve(c, bc, nil, 1e-6, 45)
		wallSolve = time.Since(t0).Seconds()
		iters = res.Iterations
	})
	if iters == 0 {
		t.Fatal("solve did not iterate")
	}

	snap := reg.Snapshot()
	sec := snap.SecondsMap()
	counts := snap.CounterMap()

	if counts["bie.gmres.solves"] != 1 || counts["bie.gmres.iterations"] != int64(iters) {
		t.Fatalf("gmres counters wrong: solves=%d iters=%d want 1/%d",
			counts["bie.gmres.solves"], counts["bie.gmres.iterations"], iters)
	}
	if counts["bie.matvec.count"] == 0 || counts["bie.matvec.count"] != counts["bie.matvec.far.count"] {
		t.Fatalf("matvec span counts inconsistent: %d total, %d far",
			counts["bie.matvec.count"], counts["bie.matvec.far.count"])
	}

	mv, far, near, solve := sec["bie.matvec"], sec["bie.matvec.far"], sec["bie.matvec.near"], sec["bie.solve"]
	if mv <= 0 || far <= 0 || near <= 0 || solve < mv {
		t.Fatalf("span totals implausible: matvec=%g far=%g near=%g solve=%g", mv, far, near, solve)
	}
	if d := math.Abs(mv - (far + near)); d > 0.10*mv {
		t.Errorf("far (%g) + near (%g) off matvec total (%g) by %.1f%%, want <= 10%%",
			far, near, mv, 100*d/mv)
	}
	// The consumer-facing accounting identity: far + near + GMRES overhead
	// explains the externally measured solve wall time.
	overhead := solve - mv
	if sum := far + near + overhead; math.Abs(sum-wallSolve) > 0.10*wallSolve {
		t.Errorf("far+near+overhead (%g) off measured solve wall (%g) by %.1f%%, want <= 10%%",
			sum, wallSolve, 100*math.Abs(sum-wallSolve)/wallSolve)
	}
}
