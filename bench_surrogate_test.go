package rbcflow_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"rbcflow/internal/network"
	"rbcflow/internal/surrogate"
)

// BenchmarkSurrogateScale is the surrogate tier's scale proof: the coupled
// flow/haematocrit/viscosity fixed point on symmetric binary trees from ~1k
// to over a million segments, emitted as BENCH_surrogate.json. The small
// depths exercise the dense LU pressure solve, the large ones the sparse
// CSR + Jacobi-CG path; structural counts (segments, nodes, solver
// iterations) are deterministic and gate exactly under benchdiff
// -strict-counts, while the build/solve walls are loose timings.
func BenchmarkSurrogateScale(b *testing.B) {
	type caseOut struct {
		Depth       int                `json:"depth"`
		PhaseCounts map[string]int64   `json:"phase_counts"`
		CGIters     int                `json:"cg_iters"` // last outer iteration's CG count; not gated
		Sparse      bool               `json:"sparse"`
		BuildS      float64            `json:"build_s"`
		SolveS      float64            `json:"solve_s"`
		Gauges      map[string]float64 `json:"gauges"`
	}

	depths := []int{9, 13, 16, 19}
	if testing.Short() {
		depths = []int{9, 13}
	}
	for i := 0; i < b.N; i++ {
		var cases []caseOut
		for _, depth := range depths {
			t0 := time.Now()
			n := network.BinaryTree(network.TreeParams{Depth: depth, RootRadius: 1, RootLen: 5})
			n.SetFlow(0, 2)
			for _, term := range n.Terminals() {
				if term != 0 {
					n.SetPressure(term, 0)
				}
			}
			buildS := time.Since(t0).Seconds()

			t0 = time.Now()
			res, err := surrogate.Solve(n, surrogate.Params{InletHct: 0.3})
			solveS := time.Since(t0).Seconds()
			if err != nil {
				b.Fatal(err)
			}
			if !res.Converged {
				b.Fatalf("depth %d: fixed point did not converge (residual %g)", depth, res.Residual)
			}
			if res.FlowImbalance > 1e-9 {
				b.Fatalf("depth %d: flow imbalance %g", depth, res.FlowImbalance)
			}
			cases = append(cases, caseOut{
				Depth: depth,
				PhaseCounts: map[string]int64{
					"surrogate.segments":    int64(len(n.Segs)),
					"surrogate.nodes":       int64(len(n.Nodes)),
					"surrogate.outer_iters": int64(res.Iters),
				},
				CGIters: res.CGIters,
				Sparse:  res.Sparse,
				BuildS:  buildS,
				SolveS:  solveS,
				Gauges: map[string]float64{
					"flow_imbalance": res.FlowImbalance,
					"rbc_imbalance":  res.RBCImbalance,
					"residual":       res.Residual,
				},
			})
		}

		last := cases[len(cases)-1]
		b.ReportMetric(float64(last.PhaseCounts["surrogate.segments"]), "segments@max")
		b.ReportMetric(last.SolveS*1e3, "solve-ms@max")

		if i == b.N-1 {
			blob, err := json.MarshalIndent(map[string]any{
				"benchmark": "BenchmarkSurrogateScale",
				"note": "coupled FL-viscosity fixed point on symmetric binary trees;" +
					" sparse CSR+CG above the dense cutoff, inlet hct 0.3",
				// Recorded so cmd/benchdiff refuses to gate timings across
				// differently-parallel runners.
				"gomaxprocs": runtime.GOMAXPROCS(0),
				"cases":      cases,
			}, "", "  ")
			if err == nil {
				_ = os.WriteFile("BENCH_surrogate.json", append(blob, '\n'), 0o644)
			}
		}
	}
}
