module rbcflow

go 1.22
