package rbcflow_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"rbcflow/internal/serve"
)

// BenchmarkServeDaemon load-tests the simulation-as-a-service daemon and
// emits BENCH_serve.json: request latency percentiles against concurrent
// client counts (free-space runs, so the numbers profile the service layer,
// not the solver), plus the plan-coalescing counts of a concurrent walled
// burst — requests, plan builds, in-memory reuses. The counts are
// deterministic (exactly one build per geometry fingerprint); the latencies
// are wall-clock and gated only loosely across machines.
func BenchmarkServeDaemon(b *testing.B) {
	type levelOut struct {
		Clients  int     `json:"clients"`
		Requests int     `json:"requests"`
		P50S     float64 `json:"p50_s"`
		P99S     float64 `json:"p99_s"`
		WallS    float64 `json:"wall_s"`
	}

	post := func(url string, req serve.RunRequest) (*serve.RunResult, error) {
		blob, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		resp, err := http.Post(url+"/v1/runs", "application/json", bytes.NewReader(blob))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var res serve.RunResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			return nil, err
		}
		if res.Status != "ok" {
			return nil, fmt.Errorf("run %s: %s (%s)", res.ID, res.Status, res.Error)
		}
		return &res, nil
	}
	pct := func(sorted []float64, q float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		i := int(q * float64(len(sorted)))
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}

	// runLevel fires `total` requests from `clients` concurrent client
	// loops and returns the latency distribution.
	runLevel := func(url string, clients, total int) (levelOut, error) {
		var mu sync.Mutex
		var lats []float64
		var firstErr error
		var wg sync.WaitGroup
		t0 := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for r := c; r < total; r += clients {
					rt0 := time.Now()
					_, err := post(url, serve.RunRequest{
						Scenario: "shear",
						Params:   map[string]float64{"sph_order": 3},
						Steps:    1,
						Ranks:    1,
					})
					lat := time.Since(rt0).Seconds()
					mu.Lock()
					if err != nil && firstErr == nil {
						firstErr = err
					}
					lats = append(lats, lat)
					mu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		if firstErr != nil {
			return levelOut{}, firstErr
		}
		sort.Float64s(lats)
		return levelOut{
			Clients:  clients,
			Requests: total,
			P50S:     pct(lats, 0.50),
			P99S:     pct(lats, 0.99),
			WallS:    time.Since(t0).Seconds(),
		}, nil
	}

	for i := 0; i < b.N; i++ {
		// Latency sweep: service-layer overhead under growing concurrency.
		latSrv := serve.New(serve.Config{
			Ranks: 1, Steps: 1, Workers: 2,
			MaxBatch: 4, BatchWait: time.Millisecond,
		}, serve.NewMemStore(), nil)
		ts := httptest.NewServer(latSrv.Handler())
		var levels []levelOut
		for _, clients := range []int{1, 4, 8} {
			lv, err := runLevel(ts.URL, clients, 16)
			if err != nil {
				ts.Close()
				b.Fatal(err)
			}
			levels = append(levels, lv)
		}
		ts.Close()

		// Coalescing burst: 4 concurrent walled (torus) requests sharing one
		// geometry key — exactly one plan build, three in-memory reuses.
		const burst = 4
		coSrv := serve.New(serve.Config{
			Ranks: 2, Steps: 1, Workers: burst,
			MaxBatch: burst, BatchWait: 5 * time.Second,
		}, serve.NewMemStore(), nil)
		cts := httptest.NewServer(coSrv.Handler())
		var wg sync.WaitGroup
		errs := make([]error, burst)
		t0 := time.Now()
		for r := 0; r < burst; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				_, errs[r] = post(cts.URL, serve.RunRequest{
					Scenario: "torus",
					Params:   map[string]float64{"sph_order": 3, "max_cells": 1},
					Steps:    1,
				})
			}(r)
		}
		wg.Wait()
		burstWall := time.Since(t0).Seconds()
		for _, err := range errs {
			if err != nil {
				cts.Close()
				b.Fatal(err)
			}
		}
		stats := coSrv.StatsSnapshot()
		cts.Close()
		if len(stats.PlanStats) != 1 {
			b.Fatalf("want 1 plan fingerprint, got %+v", stats.PlanStats)
		}
		ps := stats.PlanStats[0]

		last := levels[len(levels)-1]
		b.ReportMetric(last.P50S*1e3, "p50-ms@8clients")
		b.ReportMetric(float64(ps.Builds), "plan-builds")
		b.ReportMetric(float64(ps.Reuses), "plan-reuses")

		if i == b.N-1 {
			blob, err := json.MarshalIndent(map[string]any{
				"benchmark": "BenchmarkServeDaemon",
				"note": "latency sweep uses free-space shear runs (service-layer cost);" +
					" the coalescing burst is 4 concurrent torus requests on one geometry key",
				// Recorded so cmd/benchdiff refuses to gate timings across
				// differently-parallel runners.
				"gomaxprocs": runtime.GOMAXPROCS(0),
				"latency":    levels,
				"coalescing": map[string]any{
					"burst_wall_s": burstWall,
					"phase_counts": map[string]int64{
						"serve.requests":     int64(stats.Requests),
						"serve.batches":      stats.Batches,
						"serve.coalesced":    stats.Coalesced,
						"serve.plan_builds":  int64(ps.Builds),
						"serve.plan_reuses":  int64(ps.Reuses),
						"serve.plan_fingers": int64(len(stats.PlanStats)),
					},
				},
			}, "", "  ")
			if err == nil {
				_ = os.WriteFile("BENCH_serve.json", append(blob, '\n'), 0o644)
			}
		}
	}
}
