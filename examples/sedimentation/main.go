// Sedimentation: cells settling under gravity in a closed capsule — the
// high-volume-fraction study of paper Fig. 7 (47% initial volume fraction
// rising to ~55% in the lower half as cells pack).
package main

import (
	"fmt"

	"rbcflow"
)

func main() {
	prm := rbcflow.DefaultBIEParams()
	prm.QuadNodes = 7
	prm.ExtrapOrder = 4
	prm.Eta = 1
	prm.NearFactor = 0.8
	surf := rbcflow.CapsuleVessel(0, 2.2, [3]float64{1, 1, 1.3}, prm)
	cells := rbcflow.Fill(surf, rbcflow.FillParams{
		SphOrder: 4, Spacing: 1.0, Radius: 0.42, WallMargin: 0.12, MaxCells: 12, Seed: 7,
	})
	fmt.Printf("capsule: %d cells, initial volume fraction %.1f%%\n",
		len(cells), 100*rbcflow.VolumeFraction(surf, cells))

	cfg := rbcflow.Config{
		SphOrder: 4, Mu: 1, KappaB: 0.05, Dt: 0.02, MinSep: 0.06,
		Gravity:     [3]float64{0, 0, -1},
		CollisionOn: true,
		FMM:         rbcflow.FMMConfig{Order: 4, LeafSize: 64, DirectBelow: 1 << 24},
		GMRESMax:    30, GMRESTol: 1e-3,
	}
	rbcflow.Run(1, rbcflow.SKX(), func(c *rbcflow.Comm) {
		sim := rbcflow.NewSimulation(c, cfg, cells, surf, nil)
		var meanZ0 float64
		for _, cen := range sim.Centroids() {
			meanZ0 += cen[2]
		}
		meanZ0 /= float64(len(cells))
		for step := 1; step <= 4; step++ {
			st := sim.Step(c)
			var meanZ float64
			for _, cen := range sim.Centroids() {
				meanZ += cen[2]
			}
			meanZ /= float64(len(cells))
			fmt.Printf("step %d: mean cell height %+.4f (start %+.4f), contacts %d\n",
				step, meanZ, meanZ0, st.Contacts)
		}
	})
}
