// Vesselflow: red blood cells flowing through a closed vascular channel (a
// torus, the scaled-down stand-in for the Fig. 1 network), driven by a
// tangential wall "conveyor" window — the inflow/outflow mechanism at zero
// net flux. Reports volume fraction and per-step timing breakdown.
package main

import (
	"fmt"
	"math"

	"rbcflow"
)

func main() {
	prm := rbcflow.DefaultBIEParams()
	prm.QuadNodes = 7
	prm.ExtrapOrder = 4
	prm.Eta = 1
	prm.NearFactor = 0.8
	surf := rbcflow.TorusVessel(0, 3, 1, prm)
	cells := rbcflow.Fill(surf, rbcflow.FillParams{
		SphOrder: 4, Spacing: 1.3, Radius: 0.35, WallMargin: 0.15, MaxCells: 8, Seed: 42,
	})
	fmt.Printf("torus vessel: %d patches, %d cells, volume fraction %.1f%%\n",
		surf.F.NumPatches(), len(cells), 100*rbcflow.VolumeFraction(surf, cells))

	g := rbcflow.WallInflow(surf, 0, math.Pi/2, 2.0)
	cfg := rbcflow.Config{
		SphOrder: 4, Mu: 1, KappaB: 0.05, Dt: 0.02, MinSep: 0.06,
		CollisionOn: true,
		FMM:         rbcflow.FMMConfig{Order: 4, LeafSize: 64, DirectBelow: 1 << 24},
		GMRESMax:    30, GMRESTol: 1e-3,
	}
	world := rbcflow.Run(2, rbcflow.SKX(), func(c *rbcflow.Comm) {
		sim := rbcflow.NewSimulation(c, cfg, cells, surf, g)
		for step := 1; step <= 3; step++ {
			st := sim.Step(c)
			if c.Rank() == 0 {
				fmt.Printf("step %d: GMRES %d iters, %d contacts\n", step, st.GMRESIters, st.Contacts)
			}
		}
	})
	fmt.Printf("modeled wall time: %.3fs\n", world.VirtualTime())
	for _, k := range []string{"COL", "BIE-solve", "BIE-FMM", "Other-FMM", "Other"} {
		fmt.Printf("  %-10s %.3fs\n", k, world.TimeByLabel()[k])
	}
}
