// Quickstart: two red blood cells in a free-space shear flow u = [z, 0, 0]
// (the Fig. 10 configuration). Prints the centroid trajectories, showing the
// cells tumbling past each other without contact.
package main

import (
	"fmt"

	"rbcflow"
)

func main() {
	cfg := rbcflow.Config{
		SphOrder: 8, Mu: 1, KappaB: 0.05, Dt: 0.05, MinSep: 0.05,
		Background:  func(x [3]float64) [3]float64 { return [3]float64{x[2], 0, 0} },
		CollisionOn: true,
		FMM:         rbcflow.FMMConfig{DirectBelow: 1 << 40},
	}
	cells := []*rbcflow.Cell{
		rbcflow.NewBiconcaveCell(8, 1, [3]float64{-2, 0, 0.4}),
		rbcflow.NewBiconcaveCell(8, 1, [3]float64{2, 0, -0.4}),
	}
	fmt.Println("two RBCs in shear flow (paper Fig. 10)")
	fmt.Println("step   cell0.x  cell0.z   cell1.x  cell1.z  contacts")
	world := rbcflow.Run(1, rbcflow.SKX(), func(c *rbcflow.Comm) {
		sim := rbcflow.NewSimulation(c, cfg, cells, nil, nil)
		for step := 0; step <= 10; step++ {
			var st rbcflow.StepStats
			if step > 0 {
				st = sim.Step(c)
			}
			cen := sim.Centroids()
			fmt.Printf("%4d   %+.4f  %+.4f   %+.4f  %+.4f   %d\n",
				step, cen[0][0], cen[0][2], cen[1][0], cen[1][2], st.Contacts)
		}
	})
	fmt.Printf("modeled wall time: %.3fs, breakdown: %v\n", world.VirtualTime(), world.TimeByLabel())
}
