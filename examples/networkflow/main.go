// Networkflow: red blood cells stepping through a Y-bifurcation — the
// smallest end-to-end vascular-network scenario. The reduced-order network
// solver sets per-branch flows, plasma skimming sets per-branch
// haematocrit, the swept-tube generator builds the watertight wall surface,
// and the boundary-integral simulation advances haematocrit-seeded cells
// under the solved inlet/outlet profiles.
package main

import (
	"fmt"
	"math"

	"rbcflow"
)

func main() {
	// A Y-bifurcation with Murray-law children, flow-driven at the inlet.
	net := rbcflow.YBifurcation(rbcflow.YParams{
		ParentRadius: 1, ParentLen: 5, ChildLen: 4, HalfAngle: math.Pi / 5,
	})
	net.SetFlow(0, 2.0)
	net.SetPressure(2, 0)
	net.SetPressure(3, 0)

	flow, err := rbcflow.SolveNetworkFlow(net, 1)
	if err != nil {
		panic(err)
	}
	H := rbcflow.NetworkHaematocrit(net, flow, rbcflow.HaematocritParams{Inlet: 0.12, Gamma: 1.4})
	fmt.Printf("Y-bifurcation: junction imbalance %.2e\n", flow.MaxImbalance(net))
	for si := range net.Segs {
		fmt.Printf("  segment %d: Q=%.4f  H=%.4f\n", si, flow.Q[si], H[si])
	}

	prm := rbcflow.DefaultBIEParams()
	prm.QuadNodes = 5
	prm.ExtrapOrder = 3
	prm.Eta = 1
	prm.NearFactor = 0.6
	prm.CheckR, prm.CheckDr = 0.15, 0.15
	surf, geom, err := rbcflow.NetworkVessel(net, 0, rbcflow.TubeParams{Order: 6, AxialLen: 3.5}, prm)
	if err != nil {
		panic(err)
	}
	g := rbcflow.NetworkInflow(surf, geom, flow)
	cells := rbcflow.SeedNetworkCells(net, H, rbcflow.SeedParams{
		SphOrder: 4, CellRadius: 0.3, WallMargin: 0.12, MaxCells: 6, Seed: 11,
	})
	fmt.Printf("surface: %d patches, volume %.3f (tube-sum reference %.3f); %d cells\n",
		surf.F.NumPatches(), rbcflow.VesselVolume(surf), geom.AnalyticVolume(), len(cells))

	cfg := rbcflow.Config{
		SphOrder: 4, Mu: 1, KappaB: 0.05, Dt: 0.02, MinSep: 0.06,
		CollisionOn: true,
		BIEParams:   prm,
		FMM:         rbcflow.FMMConfig{Order: 4, LeafSize: 64, DirectBelow: 1 << 24},
		GMRESMax:    25, GMRESTol: 1e-3,
	}
	world := rbcflow.Run(2, rbcflow.SKX(), func(c *rbcflow.Comm) {
		sim := rbcflow.NewSimulation(c, cfg, cells, surf, g)
		for step := 1; step <= 3; step++ {
			st := sim.Step(c)
			if c.Rank() == 0 {
				fmt.Printf("step %d: GMRES %d iters, %d contacts\n", step, st.GMRESIters, st.Contacts)
			}
		}
	})
	fmt.Printf("modeled wall time: %.3fs\n", world.VirtualTime())
}
